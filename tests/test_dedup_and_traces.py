"""Tests for the windowed-distinct operator and trace record/replay."""

import io

import pytest

from repro.operators.dedup import WindowedDistinct
from repro.streams.elements import StreamElement
from repro.streams.sources import PoissonSource
from repro.streams.traces import (
    TraceSource,
    load_trace,
    record_trace,
)


def element(value, timestamp):
    return StreamElement(value=value, timestamp=timestamp)


class TestWindowedDistinct:
    def test_first_sighting_passes(self):
        op = WindowedDistinct(window_ns=100)
        assert op.process(element("a", 0)) == [element("a", 0)]

    def test_duplicate_within_window_suppressed(self):
        op = WindowedDistinct(window_ns=100)
        op.process(element("a", 0))
        assert op.process(element("a", 50)) == []
        assert op.suppressed == 1

    def test_key_reappears_after_silence(self):
        op = WindowedDistinct(window_ns=100)
        op.process(element("a", 0))
        out = op.process(element("a", 200))
        assert out == [element("a", 200)]

    def test_duplicates_refresh_the_window(self):
        op = WindowedDistinct(window_ns=100)
        op.process(element("a", 0))
        op.process(element("a", 90))   # suppressed, refreshes
        out = op.process(element("a", 150))  # 60 after refresh: still hot
        assert out == []

    def test_distinct_keys_independent(self):
        op = WindowedDistinct(window_ns=100)
        op.process(element("a", 0))
        assert op.process(element("b", 1)) == [element("b", 1)]

    def test_key_fn(self):
        op = WindowedDistinct(window_ns=100, key_fn=lambda v: v["id"])
        op.process(element({"id": 1, "x": "first"}, 0))
        assert op.process(element({"id": 1, "x": "second"}, 10)) == []

    def test_state_bounded_by_window(self):
        op = WindowedDistinct(window_ns=10)
        for t in range(0, 1_000, 1):
            op.process(element(t, t))  # all distinct keys
        assert op.state_size() <= 11

    def test_measured_selectivity(self):
        op = WindowedDistinct(window_ns=1_000)
        assert op.measured_selectivity is None
        for t in range(10):
            op.process(element(t % 2, t))  # 2 distinct, 8 duplicates
        assert op.measured_selectivity == pytest.approx(0.2)

    def test_reset(self):
        op = WindowedDistinct(window_ns=100)
        op.process(element("a", 0))
        op.reset()
        assert op.state_size() == 0
        assert op.process(element("a", 1)) == [element("a", 1)]

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            WindowedDistinct(window_ns=0)


class TestTraceSource:
    def test_replays_records(self):
        source = TraceSource([(0, "a"), (10, "b")])
        elements = list(source)
        assert [(e.timestamp, e.value) for e in elements] == [
            (0, "a"),
            (10, "b"),
        ]
        assert len(source) == 2

    def test_rejects_unsorted(self):
        with pytest.raises(ValueError):
            TraceSource([(10, "a"), (5, "b")])

    def test_mean_rate(self):
        source = TraceSource([(0, 1), (10**9, 2), (2 * 10**9, 3)])
        assert source.rate_per_second == pytest.approx(1.0)

    def test_rate_none_for_single_record(self):
        assert TraceSource([(0, 1)]).rate_per_second is None


class TestRoundTrip:
    def test_record_and_load(self):
        original = PoissonSource(
            200, rate_per_second=1_000.0, seed=3,
            value_fn=lambda i: (i, f"payload-{i}"),
        )
        buffer = io.StringIO()
        count = record_trace(original, buffer)
        assert count == 200
        buffer.seek(0)
        replayed = load_trace(buffer, name="replay")
        assert [(e.timestamp, e.value) for e in replayed] == [
            (e.timestamp, e.value) for e in original
        ]

    def test_complex_payloads_roundtrip(self):
        source = TraceSource(
            [(0, {"key": [1, 2, (3, "x")]}), (5, None), (9, -1.5)]
        )
        buffer = io.StringIO()
        record_trace(source, buffer)
        buffer.seek(0)
        replayed = load_trace(buffer)
        assert [e.value for e in replayed] == [
            {"key": [1, 2, (3, "x")]},
            None,
            -1.5,
        ]

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "trace.csv"
        record_trace(TraceSource([(0, 1), (1, 2)]), path)
        replayed = load_trace(path)
        assert replayed.name == "trace"
        assert len(replayed) == 2

    def test_bad_header_rejected(self):
        with pytest.raises(ValueError, match="not a trace file"):
            load_trace(io.StringIO("nope,nope\n1,2\n"))

    def test_malformed_row_rejected(self):
        with pytest.raises(ValueError, match="malformed"):
            load_trace(io.StringIO("timestamp_ns,value\nnot_a_number,'x'\n"))

    def test_trace_drives_a_query(self):
        """A replayed trace works anywhere a Source does."""
        from repro.core.dataflow import Dispatcher
        from repro.graph.builder import QueryBuilder
        from repro.streams.sinks import CollectingSink

        buffer = io.StringIO()
        record_trace(TraceSource([(0, 5), (1, 10), (2, 15)]), buffer)
        buffer.seek(0)
        build = QueryBuilder()
        sink = CollectingSink()
        build.source(load_trace(buffer)).where(lambda v: v >= 10).into(sink)
        graph = build.graph()
        dispatcher = Dispatcher(graph)
        src = graph.sources()[0]
        for e in src.payload:
            for edge in graph.out_edges(src):
                dispatcher.inject(edge.consumer, e, edge.port)
        assert sink.values == [10, 15]
