"""Tests for rate/interarrival measurement primitives."""

import pytest

from repro.streams.rates import (
    NANOS_PER_SECOND,
    EwmaEstimator,
    InterarrivalTracker,
    SlidingRateMeter,
)


class TestEwmaEstimator:
    def test_first_observation_seeds_value(self):
        ewma = EwmaEstimator(alpha=0.5)
        assert ewma.observe(10.0) == 10.0
        assert ewma.value == 10.0

    def test_blending(self):
        ewma = EwmaEstimator(alpha=0.5)
        ewma.observe(10.0)
        assert ewma.observe(20.0) == pytest.approx(15.0)

    def test_alpha_one_tracks_last(self):
        ewma = EwmaEstimator(alpha=1.0)
        ewma.observe(10.0)
        ewma.observe(99.0)
        assert ewma.value == 99.0

    def test_constant_series_converges_to_constant(self):
        ewma = EwmaEstimator(alpha=0.2)
        for _ in range(50):
            ewma.observe(7.0)
        assert ewma.value == pytest.approx(7.0)

    def test_count_increments(self):
        ewma = EwmaEstimator()
        ewma.observe(1.0)
        ewma.observe(2.0)
        assert ewma.count == 2

    def test_reset(self):
        ewma = EwmaEstimator()
        ewma.observe(5.0)
        ewma.reset()
        assert ewma.value is None
        assert ewma.count == 0

    @pytest.mark.parametrize("alpha", [0.0, -0.1, 1.5])
    def test_invalid_alpha_rejected(self, alpha):
        with pytest.raises(ValueError):
            EwmaEstimator(alpha=alpha)


class TestInterarrivalTracker:
    def test_no_estimate_before_two_arrivals(self):
        tracker = InterarrivalTracker()
        tracker.observe_arrival(100)
        assert tracker.interarrival_ns is None
        assert tracker.rate_per_second is None

    def test_uniform_gaps(self):
        tracker = InterarrivalTracker(alpha=1.0)
        for t in range(0, 10_000, 1_000):
            tracker.observe_arrival(t)
        assert tracker.interarrival_ns == pytest.approx(1_000)

    def test_rate_is_reciprocal_of_gap(self):
        tracker = InterarrivalTracker(alpha=1.0)
        # 1 ms gaps = 1000 elements per second.
        tracker.observe_arrival(0)
        tracker.observe_arrival(1_000_000)
        assert tracker.rate_per_second == pytest.approx(1_000.0)

    def test_out_of_order_arrival_counts_as_zero_gap(self):
        # Join/union outputs are not globally ordered; a tardy arrival
        # must not corrupt the estimate (it contributes a zero gap).
        tracker = InterarrivalTracker(alpha=1.0)
        tracker.observe_arrival(1_000)
        tracker.observe_arrival(999)
        assert tracker.interarrival_ns == 0.0
        tracker.observe_arrival(2_000)
        # The high-water mark is still 1_000, so the gap is 1_000.
        assert tracker.interarrival_ns == 1_000.0

    def test_counts_arrivals(self):
        tracker = InterarrivalTracker()
        for t in (0, 1, 2, 3):
            tracker.observe_arrival(t)
        assert tracker.arrivals == 4


class TestSlidingRateMeter:
    def test_rate_over_window(self):
        meter = SlidingRateMeter(window_ns=NANOS_PER_SECOND)
        for t in range(0, NANOS_PER_SECOND, NANOS_PER_SECOND // 100):
            meter.observe_arrival(t)
        # 100 arrivals in the last second.
        assert meter.rate_at(NANOS_PER_SECOND - 1) == pytest.approx(100.0)

    def test_old_arrivals_are_evicted(self):
        meter = SlidingRateMeter(window_ns=NANOS_PER_SECOND)
        meter.observe_arrival(0)
        meter.observe_arrival(10 * NANOS_PER_SECOND)
        assert meter.rate_at(10 * NANOS_PER_SECOND) == pytest.approx(1.0)

    def test_total_arrivals_survive_eviction(self):
        meter = SlidingRateMeter(window_ns=100)
        for t in (0, 1_000, 2_000):
            meter.observe_arrival(t)
        assert meter.total_arrivals == 3

    def test_rejects_decreasing_timestamps(self):
        meter = SlidingRateMeter(window_ns=100)
        meter.observe_arrival(50)
        with pytest.raises(ValueError):
            meter.observe_arrival(49)

    def test_rejects_non_positive_window(self):
        with pytest.raises(ValueError):
            SlidingRateMeter(window_ns=0)
