"""Tests for the query-graph substrate."""

import pytest

from repro.errors import GraphCycleError, GraphError, PortError, UnknownNodeError
from repro.graph.node import annotated_operator_node
from repro.graph.query_graph import QueryGraph, derive_rates
from repro.operators.selection import Selection
from repro.operators.union import Union
from repro.streams.sinks import CountingSink
from repro.streams.sources import ConstantRateSource


def simple_graph():
    """source -> selection -> sink"""
    g = QueryGraph("simple")
    src = g.add_source(ConstantRateSource(10, 100.0, name="src"))
    sel = g.add_operator(Selection(lambda v: True, name="sel"))
    sink = g.add_sink(CountingSink(name="out"))
    g.connect(src, sel)
    g.connect(sel, sink)
    return g, src, sel, sink


class TestConstruction:
    def test_simple_graph_validates(self):
        g, *_ = simple_graph()
        g.validate()

    def test_kinds(self):
        g, src, sel, sink = simple_graph()
        assert src.is_source and sel.is_operator and sink.is_sink
        assert not sel.is_queue

    def test_connect_unknown_node_rejected(self):
        g, src, sel, sink = simple_graph()
        other = QueryGraph("other")
        stray = other.add_operator(Selection(lambda v: True))
        with pytest.raises(UnknownNodeError):
            g.connect(src, stray)

    def test_sink_cannot_produce(self):
        g, src, sel, sink = simple_graph()
        extra = g.add_sink(CountingSink(name="extra"))
        with pytest.raises(GraphError):
            g.connect(sink, extra)

    def test_source_cannot_consume(self):
        g, src, sel, sink = simple_graph()
        with pytest.raises(GraphError):
            g.connect(sel, src)

    def test_port_out_of_range(self):
        g, src, sel, sink = simple_graph()
        extra = g.add_source(ConstantRateSource(1, 1.0, name="src2"))
        with pytest.raises(PortError):
            g.connect(extra, sel, port=1)

    def test_port_already_taken(self):
        g, src, sel, sink = simple_graph()
        extra = g.add_source(ConstantRateSource(1, 1.0, name="src2"))
        with pytest.raises(PortError):
            g.connect(extra, sel, port=0)

    def test_cycle_rejected(self):
        g = QueryGraph()
        a = g.add_operator(Union(arity=2, name="a"))
        b = g.add_operator(Union(arity=2, name="b"))
        g.connect(a, b, 0)
        with pytest.raises(GraphCycleError):
            g.connect(b, a, 0)

    def test_self_loop_rejected(self):
        g = QueryGraph()
        a = g.add_operator(Union(arity=2, name="a"))
        with pytest.raises(GraphCycleError):
            g.connect(a, a, 1)

    def test_duplicate_node_rejected(self):
        g, src, *_ = simple_graph()
        with pytest.raises(GraphError):
            g.add_node(src)


class TestValidation:
    def test_unconnected_port_detected(self):
        g = QueryGraph()
        src = g.add_source(ConstantRateSource(1, 1.0))
        union = g.add_operator(Union(arity=2))
        sink = g.add_sink(CountingSink())
        g.connect(src, union, 0)
        g.connect(union, sink)
        with pytest.raises(GraphError, match="unconnected input ports"):
            g.validate()

    def test_source_without_consumer_detected(self):
        g = QueryGraph()
        g.add_source(ConstantRateSource(1, 1.0))
        with pytest.raises(GraphError, match="no consumer"):
            g.validate()

    def test_operator_without_consumer_detected(self):
        g = QueryGraph()
        src = g.add_source(ConstantRateSource(1, 1.0))
        sel = g.add_operator(Selection(lambda v: True))
        g.connect(src, sel)
        with pytest.raises(GraphError, match="no consumer"):
            g.validate()


class TestStructureQueries:
    def test_topological_order(self):
        g, src, sel, sink = simple_graph()
        order = g.topological_order()
        assert order.index(src) < order.index(sel) < order.index(sink)

    def test_successors_predecessors(self):
        g, src, sel, sink = simple_graph()
        assert g.successors(src) == [sel]
        assert g.predecessors(sink) == [sel]

    def test_subquery_sharing_fan_out(self):
        g = QueryGraph()
        src = g.add_source(ConstantRateSource(1, 1.0))
        sel = g.add_operator(Selection(lambda v: True))
        sink_a = g.add_sink(CountingSink(name="a"))
        sink_b = g.add_sink(CountingSink(name="b"))
        g.connect(src, sel)
        g.connect(sel, sink_a)
        g.connect(sel, sink_b)
        g.validate()
        assert len(g.successors(sel)) == 2

    def test_find_edge(self):
        g, src, sel, sink = simple_graph()
        edge = g.find_edge(src, sel)
        assert edge.producer is src and edge.consumer is sel
        with pytest.raises(UnknownNodeError):
            g.find_edge(src, sink)


class TestQueueSplicing:
    def test_insert_queue_splits_edge(self):
        g, src, sel, sink = simple_graph()
        edge = g.find_edge(src, sel)
        queue = g.insert_queue(edge)
        assert queue.is_queue
        assert g.successors(src) == [queue]
        assert g.successors(queue) == [sel]
        g.validate()

    def test_remove_queue_restores_edge(self):
        g, src, sel, sink = simple_graph()
        queue = g.insert_queue(g.find_edge(src, sel))
        g.remove_queue(queue)
        assert g.successors(src) == [sel]
        assert queue not in g
        g.validate()

    def test_remove_nonempty_queue_rejected(self):
        from repro.streams.elements import StreamElement

        g, src, sel, sink = simple_graph()
        queue = g.insert_queue(g.find_edge(src, sel))
        queue.payload.push(StreamElement(value=1))
        with pytest.raises(GraphError, match="drain"):
            g.remove_queue(queue)

    def test_remove_queue_on_non_queue_rejected(self):
        g, src, sel, sink = simple_graph()
        with pytest.raises(GraphError):
            g.remove_queue(sel)

    def test_decouple_all(self):
        g = QueryGraph()
        src = g.add_source(ConstantRateSource(1, 1.0))
        s1 = g.add_operator(Selection(lambda v: True, name="s1"))
        s2 = g.add_operator(Selection(lambda v: True, name="s2"))
        sink = g.add_sink(CountingSink())
        g.connect(src, s1)
        g.connect(s1, s2)
        g.connect(s2, sink)
        inserted = g.decouple_all()
        # source->s1 and s1->s2 get queues; s2->sink does not.
        assert len(inserted) == 2
        assert len(g.queues()) == 2
        g.validate()

    def test_decouple_all_is_idempotent(self):
        g, *_ = simple_graph()
        first = g.decouple_all()
        second = g.decouple_all()
        assert len(first) == 1
        assert second == []


class TestDeriveRates:
    def test_chain_rates(self):
        g = QueryGraph()
        src = g.add_source(ConstantRateSource(1, 1000.0))
        a = annotated_operator_node("a", cost_ns=100.0, selectivity=0.5)
        b = annotated_operator_node("b", cost_ns=100.0, selectivity=1.0)
        sink = g.add_sink(CountingSink())
        g.add_node(a)
        g.add_node(b)
        g.connect(src, a)
        g.connect(a, b)
        g.connect(b, sink)
        rates = derive_rates(g)
        assert rates[a] == pytest.approx(1000.0)
        assert rates[b] == pytest.approx(500.0)
        assert a.interarrival_ns == pytest.approx(1e6)  # 1000/s -> 1 ms
        assert b.interarrival_ns == pytest.approx(2e6)

    def test_fan_in_sums_rates(self):
        g = QueryGraph()
        s1 = g.add_source(ConstantRateSource(1, 300.0))
        s2 = g.add_source(ConstantRateSource(1, 700.0))
        union = annotated_operator_node("u", cost_ns=1.0, selectivity=1.0, arity=2)
        g.add_node(union)
        sink = g.add_sink(CountingSink())
        g.connect(s1, union, 0)
        g.connect(s2, union, 1)
        g.connect(union, sink)
        rates = derive_rates(g)
        assert rates[union] == pytest.approx(1000.0)

    def test_explicit_rates_override(self):
        g, src, sel, sink = simple_graph()
        rates = derive_rates(g, source_rates={src: 42.0})
        assert rates[sel] == pytest.approx(42.0)

    def test_missing_rate_rejected(self):
        g = QueryGraph()

        class NoRate:
            name = "x"

            def __iter__(self):
                return iter(())

        from repro.graph.node import Node, NodeKind

        src = g.add_node(Node(NodeKind.SOURCE, NoRate()))
        sel = g.add_operator(Selection(lambda v: True))
        sink = g.add_sink(CountingSink())
        g.connect(src, sel)
        g.connect(sel, sink)
        with pytest.raises(GraphError, match="no rate"):
            derive_rates(g)
