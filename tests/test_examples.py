"""Smoke tests: every example script must run to completion.

The examples double as integration tests of the public API; each one
asserts its own correctness conditions internally, so executing
``main()`` without an exception is a meaningful check.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

EXAMPLES = [
    "quickstart",
    "traffic_monitoring",
    "intrusion_detection",
    "simulation_study",
    "pull_vs_push",
    "adaptive_placement",
]


def load_example(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name, capsys):
    module = load_example(name)
    module.main()
    out = capsys.readouterr().out
    assert out.strip(), f"example {name} produced no output"


def test_examples_list_is_complete():
    on_disk = {path.stem for path in EXAMPLES_DIR.glob("*.py")}
    assert on_disk == set(EXAMPLES)
