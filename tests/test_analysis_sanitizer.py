"""Tests for the runtime concurrency sanitizer (repro.analysis.sanitizer).

Covers the three detectors (lock-order cycles, cross-thread state
access, scheduler starvation), the engine/dispatcher integration under
``EngineConfig.sanitize``, the zero-overhead off mode, and the
lock-discipline regression for ``Dispatcher._lock_for``.
"""

import threading

import pytest

from repro.analysis.sanitizer import ConcurrencySanitizer, SanitizedLock
from repro.core.dataflow import Dispatcher
from repro.core.engine import ThreadedEngine
from repro.core.modes import EngineConfig, gts_config, ots_config
from repro.errors import SanitizerError
from repro.graph.builder import QueryBuilder
from repro.graph.node import Node, NodeKind
from repro.streams.elements import StreamElement
from repro.streams.sinks import CollectingSink
from repro.streams.sources import ListSource

N = 120
EXPECTED = [v for v in range(N) if v % 2 == 0]


def selection_query(decouple=True):
    build = QueryBuilder()
    sink = CollectingSink()
    (
        build.source(ListSource(range(N)))
        .where(lambda v: v % 2 == 0, name="sel", selectivity=0.5)
        .map(lambda v: v, name="m")
        .into(sink)
    )
    graph = build.graph()
    if decouple:
        graph.decouple_all()
    return graph, sink


def findings_for(sanitizer, rule):
    return [f for f in sanitizer.findings if f.rule == rule]


class TestLockOrderCycles:
    def test_two_thread_opposite_order_deadlock_reported_within_5s(self):
        """The seeded deadlock from the issue: two units, two node locks,
        opposite acquisition order.  The order edge is recorded *before*
        blocking, so the report appears even while the threads are
        actually wedged against each other."""
        sanitizer = ConcurrencySanitizer()
        lock_a = sanitizer.make_lock("node:a")
        lock_b = sanitizer.make_lock("node:b")
        barrier = threading.Barrier(2, timeout=5)

        def unit(first, second):
            with first:
                barrier.wait()
                # Bounded acquire: the test must terminate even though
                # the two threads genuinely deadlock here.
                if second.acquire(timeout=2):
                    second.release()

        t1 = threading.Thread(target=unit, args=(lock_a, lock_b), daemon=True)
        t2 = threading.Thread(target=unit, args=(lock_b, lock_a), daemon=True)
        t1.start()
        t2.start()
        t1.join(timeout=5)
        t2.join(timeout=5)
        assert not t1.is_alive() and not t2.is_alive()
        cycles = findings_for(sanitizer, "SAN001")
        assert len(cycles) == 1
        finding = cycles[0]
        assert set(finding.nodes) == {"node:a", "node:b"}
        assert "potential deadlock" in finding.message
        # Both stacks are attached: the closing edge and the first
        # recording of the conflicting edge.
        assert finding.detail.count("first recorded") == 1
        assert "closed the cycle" in finding.detail
        with pytest.raises(SanitizerError, match="SAN001"):
            sanitizer.raise_if_findings()

    def test_single_thread_nesting_records_cycle_once(self):
        sanitizer = ConcurrencySanitizer()
        lock_a = sanitizer.make_lock("a")
        lock_b = sanitizer.make_lock("b")
        for _ in range(3):
            with lock_a:
                with lock_b:
                    pass
            with lock_b:
                with lock_a:
                    pass
        assert len(findings_for(sanitizer, "SAN001")) == 1

    def test_three_lock_cycle_detected(self):
        sanitizer = ConcurrencySanitizer()
        locks = {name: sanitizer.make_lock(name) for name in "abc"}
        for first, second in [("a", "b"), ("b", "c"), ("c", "a")]:
            with locks[first]:
                with locks[second]:
                    pass
        cycles = findings_for(sanitizer, "SAN001")
        assert len(cycles) == 1
        assert set(cycles[0].nodes) == {"a", "b", "c"}

    def test_consistent_order_is_clean(self):
        sanitizer = ConcurrencySanitizer()
        lock_a = sanitizer.make_lock("a")
        lock_b = sanitizer.make_lock("b")

        def worker():
            for _ in range(50):
                with lock_a:
                    with lock_b:
                        pass

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert sanitizer.findings == []
        sanitizer.raise_if_findings()  # must not raise

    def test_reacquire_same_name_is_not_a_cycle(self):
        sanitizer = ConcurrencySanitizer()
        lock = sanitizer.make_lock("only")
        with lock:
            pass
        with lock:
            pass
        assert sanitizer.findings == []

    def test_sanitized_lock_behaves_like_a_lock(self):
        sanitizer = ConcurrencySanitizer()
        lock = sanitizer.make_lock("l")
        assert isinstance(lock, SanitizedLock)
        assert not lock.locked()
        assert lock.acquire()
        assert lock.locked()
        assert not lock.acquire(blocking=False)
        lock.release()
        assert not lock.locked()


class TestOwnershipChecker:
    def test_cross_thread_unlocked_access_reported(self):
        sanitizer = ConcurrencySanitizer()
        key = object()
        sanitizer.check_unlocked_access(key, "join")

        def other():
            sanitizer.check_unlocked_access(key, "join")

        thread = threading.Thread(target=other)
        thread.start()
        thread.join()
        races = findings_for(sanitizer, "SAN002")
        assert len(races) == 1
        assert races[0].nodes == ("join",)
        assert "first access in thread" in races[0].detail
        assert "conflicting access in thread" in races[0].detail

    def test_same_thread_accesses_are_clean(self):
        sanitizer = ConcurrencySanitizer()
        key = object()
        for _ in range(5):
            sanitizer.check_unlocked_access(key, "sel")
        assert sanitizer.findings == []

    def test_forget_owner_models_a_handoff(self):
        sanitizer = ConcurrencySanitizer()
        key = object()
        sanitizer.check_unlocked_access(key, "sel")
        sanitizer.forget_owner(key)

        def other():
            sanitizer.check_unlocked_access(key, "sel")

        thread = threading.Thread(target=other)
        thread.start()
        thread.join()
        assert sanitizer.findings == []

    def test_race_reported_once_per_thread(self):
        sanitizer = ConcurrencySanitizer()
        key = object()
        sanitizer.check_unlocked_access(key, "sel")

        def other():
            for _ in range(10):
                sanitizer.check_unlocked_access(key, "sel")

        thread = threading.Thread(target=other)
        thread.start()
        thread.join()
        assert len(findings_for(sanitizer, "SAN002")) == 1

    def test_lock_free_dispatcher_cross_thread_invoke_flagged(self):
        """The dispatcher integration: locking=False + sanitizer routes
        every operator invocation through the ownership checker."""
        graph, _ = selection_query(decouple=False)
        sanitizer = ConcurrencySanitizer()
        dispatcher = Dispatcher(graph, locking=False, sanitizer=sanitizer)
        source_node = graph.sources()[0]
        consumer = graph.successors(source_node)[0]

        def drive():
            dispatcher.inject(consumer, StreamElement(value=2, timestamp=0))

        drive()
        thread = threading.Thread(target=drive)
        thread.start()
        thread.join()
        races = findings_for(sanitizer, "SAN002")
        assert races
        assert any("sel" in f.nodes[0] for f in races)

    def test_locked_dispatcher_does_not_use_ownership_checker(self):
        graph, _ = selection_query(decouple=False)
        sanitizer = ConcurrencySanitizer()
        dispatcher = Dispatcher(graph, locking=True, sanitizer=sanitizer)
        assert dispatcher._access_check is None
        consumer = graph.successors(graph.sources()[0])[0]
        dispatcher.inject(consumer, StreamElement(value=2, timestamp=0))
        assert sanitizer.findings == []


class TestStarvationWatchdog:
    def test_unit_starved_past_bound_reported(self):
        sanitizer = ConcurrencySanitizer(starvation_grant_bound=3)
        watchdog = sanitizer.watchdog
        watchdog.on_wait("victim")
        for _ in range(4):
            watchdog.on_grant_event(("hog",), ("victim",))
        starved = findings_for(sanitizer, "SAN003")
        assert len(starved) == 1
        assert starved[0].nodes == ("victim",)
        assert "starved" in starved[0].message

    def test_granted_within_bound_is_clean(self):
        sanitizer = ConcurrencySanitizer(starvation_grant_bound=3)
        watchdog = sanitizer.watchdog
        for _ in range(10):
            watchdog.on_wait("unit")
            watchdog.on_grant_event(("other",), ("unit",))
            watchdog.on_granted("unit")
        assert sanitizer.findings == []

    def test_reported_once_per_wait(self):
        sanitizer = ConcurrencySanitizer(starvation_grant_bound=2)
        watchdog = sanitizer.watchdog
        watchdog.on_wait("victim")
        for _ in range(10):
            watchdog.on_grant_event(("hog",), ("victim",))
        assert len(findings_for(sanitizer, "SAN003")) == 1
        # A fresh wait after being granted resets the budget and may
        # report again.
        watchdog.on_granted("victim")
        watchdog.on_wait("victim")
        for _ in range(10):
            watchdog.on_grant_event(("hog",), ("victim",))
        assert len(findings_for(sanitizer, "SAN003")) == 2

    def test_bound_must_be_positive(self):
        with pytest.raises(SanitizerError):
            ConcurrencySanitizer(starvation_grant_bound=0)


class TestEngineIntegration:
    def test_sanitized_gts_run_is_clean(self):
        graph, sink = selection_query()
        config = gts_config(graph, "fifo", sanitize=True)
        engine = ThreadedEngine(graph, config)
        assert engine.sanitizer is not None
        report = engine.run(timeout=30)
        assert not report.aborted
        assert sink.values == EXPECTED
        assert engine.sanitizer.findings == []

    def test_sanitized_ots_bounded_run_is_clean(self):
        graph, sink = selection_query()
        config = ots_config(graph, max_concurrency=2, sanitize=True)
        engine = ThreadedEngine(graph, config)
        report = engine.run(timeout=30)
        assert not report.aborted
        assert sink.values == EXPECTED
        assert engine.sanitizer.findings == []

    def test_sanitized_run_uses_instrumented_node_locks(self):
        graph, _ = selection_query()
        engine = ThreadedEngine(graph, gts_config(graph, sanitize=True))
        locks = engine.dispatcher._locks
        assert locks
        assert all(isinstance(lock, SanitizedLock) for lock in locks.values())

    def test_seeded_finding_fails_the_run(self):
        graph, _ = selection_query()
        engine = ThreadedEngine(graph, gts_config(graph, sanitize=True))
        lock_a = engine.sanitizer.make_lock("a")
        lock_b = engine.sanitizer.make_lock("b")
        with lock_a:
            with lock_b:
                pass
        with lock_b:
            with lock_a:
                pass
        with pytest.raises(SanitizerError, match="SAN001"):
            engine.run(timeout=30)

    def test_off_mode_constructs_no_instrumentation(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        graph, _ = selection_query()
        config = gts_config(graph)
        assert config.sanitize is False
        engine = ThreadedEngine(graph, config)
        assert engine.sanitizer is None
        assert engine.dispatcher._sanitizer is None
        assert engine.dispatcher._access_check is None
        assert not any(
            isinstance(lock, SanitizedLock)
            for lock in engine.dispatcher._locks.values()
        )

    def test_repro_sanitize_env_var_is_the_default(self, monkeypatch):
        graph, _ = selection_query()
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert gts_config(graph).sanitize is True
        monkeypatch.setenv("REPRO_SANITIZE", "0")
        assert gts_config(graph).sanitize is False
        monkeypatch.delenv("REPRO_SANITIZE")
        assert gts_config(graph).sanitize is False


class TestLockForDiscipline:
    """Regression for the unguarded ``Dispatcher._lock_for`` fast path."""

    def test_all_graph_nodes_have_locks_at_construction(self):
        graph, _ = selection_query()
        dispatcher = Dispatcher(graph, locking=True)
        assert set(dispatcher._locks) >= set(graph.nodes)

    def test_queue_splice_extends_the_lock_map(self):
        graph, _ = selection_query(decouple=False)
        dispatcher = Dispatcher(graph, locking=True)
        nodes = list(graph.nodes)
        queue = graph.insert_queue(graph.find_edge(nodes[1], nodes[2]))
        # The new queue node gets its lock at plan recompilation.
        dispatcher._plan_for(queue)
        assert queue in dispatcher._locks

    def test_concurrent_lock_for_returns_one_instance(self):
        """Many threads racing _lock_for on a node outside the graph
        (the capture-sink slow path) must agree on a single lock."""
        graph, _ = selection_query()
        dispatcher = Dispatcher(graph, locking=True)
        stray = Node(NodeKind.SINK, CollectingSink(), name="capture")
        barrier = threading.Barrier(8)
        seen = []
        seen_lock = threading.Lock()

        def worker():
            barrier.wait()
            lock = dispatcher._lock_for(stray)
            with seen_lock:
                seen.append(lock)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(seen) == 8
        assert len({id(lock) for lock in seen}) == 1

    def test_unlocked_dispatcher_returns_null_context(self):
        graph, _ = selection_query()
        dispatcher = Dispatcher(graph, locking=False)
        assert dispatcher._locks == {}
        with dispatcher._lock_for(graph.nodes[0]):
            pass  # nullcontext: no lock state involved
