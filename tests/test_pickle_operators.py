"""Mid-stream pickle round-trips for every shipped operator class.

The process backend migrates operator state between worker address
spaces by pickling whole payloads (``repro.mp``, reconfigure), so every
shipped operator must survive ``pickle.dumps``/``loads`` *mid-stream*:
after restoring, the copy must produce output identical to the original
for the remainder of the stream.  AN009 lints the same property
statically; this is the dynamic proof.

``QueueOperator`` is deliberately absent: queues are region boundaries,
never region members, so their (Condition-holding) payloads are never
pickled — the process backend replaces them with ring proxies outright.
"""

import pickle

import pytest

from repro.operators.aggregate import IncrementalAggregate, WindowedAggregate
from repro.operators.dedup import WindowedDistinct
from repro.operators.joins import SymmetricHashJoin, SymmetricNestedLoopsJoin
from repro.operators.projection import FlatMapOperator, MapOperator, Projection
from repro.operators.selection import Selection, SimulatedSelection
from repro.operators.union import Union
from repro.streams.elements import StreamElement


def keep_small(value):
    return value < 60


def double(value):
    return value * 2


def fan_out(value):
    return [value, value + 100]


def bucket(value):
    return value % 7


OPERATOR_FACTORIES = {
    "selection": lambda: Selection(keep_small),
    "simulated_selection": lambda: SimulatedSelection(0.37),
    "map": lambda: MapOperator(double),
    "flat_map": lambda: FlatMapOperator(fan_out),
    "projection": lambda: Projection([0]),
    "union": lambda: Union(arity=2),
    "windowed_aggregate": lambda: WindowedAggregate(
        window_ns=40, aggregate="sum", key_fn=bucket
    ),
    "incremental_aggregate": lambda: IncrementalAggregate(window_ns=40, aggregate="avg"),
    "windowed_distinct": lambda: WindowedDistinct(window_ns=25, key_fn=bucket),
    "symmetric_hash_join": lambda: SymmetricHashJoin(window_ns=30),
    "symmetric_nested_loops_join": lambda: SymmetricNestedLoopsJoin(window_ns=30),
}


def _elements(name):
    payload = (
        (lambda i: (i % 11, i))  # sequence payloads for the projection
        if name == "projection"
        else (lambda i: i % 11)
    )
    return [StreamElement(value=payload(i), timestamp=i) for i in range(100)]


def _port_for(operator, index):
    return index % operator.arity


def _feed(operator, elements, start, stop):
    outputs = []
    for index in range(start, stop):
        outputs.extend(
            (out.value, out.timestamp)
            for out in operator.process(elements[index], _port_for(operator, index))
        )
    return outputs


@pytest.mark.parametrize("name", sorted(OPERATOR_FACTORIES))
def test_mid_stream_round_trip_preserves_output(name):
    elements = _elements(name)
    original = OPERATOR_FACTORIES[name]()
    _feed(original, elements, 0, 55)

    restored = pickle.loads(pickle.dumps(original, pickle.HIGHEST_PROTOCOL))

    tail_original = _feed(original, elements, 55, 100)
    tail_restored = _feed(restored, elements, 55, 100)
    assert tail_restored == tail_original

    # End-of-stream behavior must survive the round trip too.
    end_original = []
    end_restored = []
    for port in range(original.arity):
        end_original.extend(
            (out.value, out.timestamp) for out in original.end_port(port)
        )
        end_restored.extend(
            (out.value, out.timestamp) for out in restored.end_port(port)
        )
    assert end_restored == end_original


@pytest.mark.parametrize("name", sorted(OPERATOR_FACTORIES))
def test_default_construction_is_picklable(name):
    operator = OPERATOR_FACTORIES[name]()
    blob = pickle.dumps(operator, pickle.HIGHEST_PROTOCOL)
    assert type(pickle.loads(blob)) is type(operator)
