"""Tests for the level-3 thread scheduler."""

import threading
import time

import pytest

from repro.core.thread_scheduler import ThreadScheduler
from repro.errors import SchedulingError


class TestRegistration:
    def test_register_and_priority(self):
        ts = ThreadScheduler(max_concurrency=1)
        ts.register("a", priority=5.0)
        assert ts.priority_of("a") == 5.0

    def test_duplicate_registration_rejected(self):
        ts = ThreadScheduler()
        ts.register("a")
        with pytest.raises(SchedulingError):
            ts.register("a")

    def test_set_priority_at_runtime(self):
        ts = ThreadScheduler()
        ts.register("a", priority=1.0)
        ts.set_priority("a", 9.0)
        assert ts.priority_of("a") == 9.0

    def test_unknown_unit_rejected(self):
        ts = ThreadScheduler()
        with pytest.raises(SchedulingError):
            ts.acquire("ghost")

    def test_unregister(self):
        ts = ThreadScheduler()
        ts.register("a")
        ts.unregister("a")
        with pytest.raises(SchedulingError):
            ts.priority_of("a")


class TestGate:
    def test_unbounded_always_grants(self):
        ts = ThreadScheduler(max_concurrency=None)
        ts.register("a")
        assert ts.acquire("a", timeout=1.0)
        ts.release("a")

    def test_respects_concurrency_bound(self):
        ts = ThreadScheduler(max_concurrency=1)
        ts.register("a")
        ts.register("b")
        assert ts.acquire("a", timeout=1.0)
        assert not ts.acquire("b", timeout=0.05)
        ts.release("a")
        assert ts.acquire("b", timeout=1.0)
        ts.release("b")

    def test_double_acquire_rejected(self):
        ts = ThreadScheduler()
        ts.register("a")
        ts.acquire("a", timeout=1.0)
        with pytest.raises(SchedulingError):
            ts.acquire("a")

    def test_release_without_permit_rejected(self):
        ts = ThreadScheduler()
        ts.register("a")
        with pytest.raises(SchedulingError):
            ts.release("a")

    def test_higher_priority_wins(self):
        ts = ThreadScheduler(max_concurrency=1)
        ts.register("low", priority=0.0)
        ts.register("high", priority=100.0)
        ts.acquire("low", timeout=1.0)  # occupy the slot
        order = []

        def waiter(name):
            assert ts.acquire(name, timeout=5.0)
            order.append(name)
            ts.release(name)

        threads = [
            threading.Thread(target=waiter, args=("low2",)),
            threading.Thread(target=waiter, args=("high",)),
        ]
        ts.register("low2", priority=0.0)
        for t in threads:
            t.start()
        time.sleep(0.1)  # both now waiting
        ts.release("low")
        for t in threads:
            t.join(timeout=5.0)
        assert order[0] == "high"

    def test_stop_wakes_waiters_with_denial(self):
        ts = ThreadScheduler(max_concurrency=1)
        ts.register("a")
        ts.register("b")
        ts.acquire("a", timeout=1.0)
        results = []

        def waiter():
            results.append(ts.acquire("b", timeout=5.0))

        thread = threading.Thread(target=waiter)
        thread.start()
        time.sleep(0.05)
        ts.stop()
        thread.join(timeout=5.0)
        assert results == [False]

    def test_grants_accounting(self):
        ts = ThreadScheduler()
        ts.register("a")
        for _ in range(3):
            ts.acquire("a", timeout=1.0)
            ts.release("a")
        assert ts.grants("a") == 3
        assert ts.total_wait_ns("a") >= 0


class TestStarvationPrevention:
    def test_aging_eventually_runs_low_priority(self):
        """A starving low-priority unit must overtake via aging."""
        ts = ThreadScheduler(max_concurrency=1, aging_ns=1_000_000.0)  # 1 ms/point
        ts.register("greedy", priority=10.0)
        ts.register("meek", priority=0.0)
        got_slot = threading.Event()

        def meek():
            if ts.acquire("meek", timeout=5.0):
                got_slot.set()
                ts.release("meek")

        meek_thread = threading.Thread(target=meek)

        stop = threading.Event()

        def greedy():
            while not stop.is_set():
                if ts.acquire("greedy", timeout=0.5):
                    time.sleep(0.005)
                    ts.release("greedy")

        greedy_thread = threading.Thread(target=greedy)
        greedy_thread.start()
        time.sleep(0.02)
        meek_thread.start()
        assert got_slot.wait(timeout=5.0), "low-priority unit starved"
        stop.set()
        greedy_thread.join(timeout=5.0)
        meek_thread.join(timeout=5.0)


class TestValidation:
    def test_rejects_zero_concurrency(self):
        with pytest.raises(SchedulingError):
            ThreadScheduler(max_concurrency=0)

    def test_rejects_non_positive_aging(self):
        with pytest.raises(SchedulingError):
            ThreadScheduler(aging_ns=0.0)
