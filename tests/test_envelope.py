"""Tests for progress charts and lower envelopes (Chain strategy)."""

import pytest

from repro.core.envelope import (
    lower_envelope_segments,
    progress_chart,
    segment_slopes,
)


class TestProgressChart:
    def test_origin_and_accumulation(self):
        points = progress_chart([10.0, 20.0], [0.5, 0.5])
        assert (points[0].cumulative_cost_ns, points[0].remaining_fraction) == (
            0.0,
            1.0,
        )
        assert points[1].cumulative_cost_ns == 10.0
        assert points[1].remaining_fraction == 0.5
        assert points[2].cumulative_cost_ns == 30.0
        assert points[2].remaining_fraction == 0.25

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            progress_chart([1.0], [0.5, 0.5])

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            progress_chart([-1.0], [0.5])

    def test_negative_selectivity_rejected(self):
        with pytest.raises(ValueError):
            progress_chart([1.0], [-0.5])


class TestLowerEnvelope:
    def test_single_operator_single_segment(self):
        assert lower_envelope_segments([10.0], [0.5]) == [[0]]

    def test_segments_partition_all_operators(self):
        segments = lower_envelope_segments(
            [1.0, 2.0, 3.0, 4.0], [0.9, 0.1, 0.9, 0.5]
        )
        flat = [i for seg in segments for i in seg]
        assert flat == [0, 1, 2, 3]

    def test_cheap_filter_after_expensive_noop_merges(self):
        # Classic Chain example: an expensive selectivity-1 operator
        # followed by a cheap selective one is steeper taken together.
        segments = lower_envelope_segments([100.0, 1.0], [1.0, 0.01])
        assert segments == [[0, 1]]

    def test_selective_cheap_operator_forms_own_segment(self):
        # A cheap highly selective operator first, then an expensive
        # non-selective one: the first drop is the steepest.
        segments = lower_envelope_segments([1.0, 100.0], [0.01, 1.0])
        assert segments == [[0], [1]]

    def test_paper_fig9_query_groups(self):
        """The Section 6.6 query splits into the groups the paper states.

        "This computation splits the graph in two groups, the first
        consisting of the projection and the following selection and the
        second consisting of the remaining selection."
        """
        costs = [2_700.0, 530.0, 2e9]
        selectivities = [1.0, 9e-4, 0.3]
        segments = lower_envelope_segments(costs, selectivities)
        assert segments == [[0, 1], [2]]

    def test_zero_cost_operator_folds_forward(self):
        segments = lower_envelope_segments([0.0, 10.0], [1.0, 0.5])
        flat = [i for seg in segments for i in seg]
        assert flat == [0, 1]


class TestSegmentSlopes:
    def test_slopes_constant_within_segment(self):
        costs = [2_700.0, 530.0, 2e9]
        selectivities = [1.0, 9e-4, 0.3]
        slopes = segment_slopes(costs, selectivities)
        assert slopes[0] == slopes[1]
        assert slopes[2] != slopes[0]

    def test_first_group_is_steeper(self):
        costs = [2_700.0, 530.0, 2e9]
        selectivities = [1.0, 9e-4, 0.3]
        slopes = segment_slopes(costs, selectivities)
        # Steeper = more negative: the cheap selective group wins.
        assert slopes[0] < slopes[2]

    def test_slope_value(self):
        slopes = segment_slopes([10.0], [0.5])
        assert slopes[0] == pytest.approx((0.5 - 1.0) / 10.0)
