"""Property-based tests (hypothesis) for the stream substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.operators.joins import SymmetricHashJoin, SymmetricNestedLoopsJoin
from repro.operators.queue_op import QueueOperator
from repro.operators.window import CountWindow, TimeWindow
from repro.streams.elements import StreamElement
from repro.streams.rates import EwmaEstimator
from repro.streams.sources import BurstPhase, BurstySource, PoissonSource


class TestTimeWindowProperties:
    @given(
        size=st.integers(min_value=1, max_value=1_000),
        gaps=st.lists(st.integers(min_value=0, max_value=300), max_size=80),
    )
    def test_window_contains_exactly_in_range_elements(self, size, gaps):
        window = TimeWindow(size_ns=size)
        timestamps = []
        t = 0
        for gap in gaps:
            t += gap
            timestamps.append(t)
            window.insert(StreamElement(value=t, timestamp=t))
        if timestamps:
            now = timestamps[-1]
            expected = [ts for ts in timestamps if ts > now - size]
            assert [e.timestamp for e in window] == expected

    @given(
        size=st.integers(min_value=1, max_value=500),
        timestamps=st.lists(
            st.integers(min_value=0, max_value=2_000), max_size=60
        ),
    )
    def test_out_of_order_inserts_keep_window_sorted(self, size, timestamps):
        window = TimeWindow(size_ns=size)
        for ts in timestamps:
            window.insert(StreamElement(value=ts, timestamp=ts))
        contents = [e.timestamp for e in window]
        assert contents == sorted(contents)

    @given(
        capacity=st.integers(min_value=1, max_value=50),
        n=st.integers(min_value=0, max_value=200),
    )
    def test_count_window_never_exceeds_capacity(self, capacity, n):
        window = CountWindow(size=capacity)
        for i in range(n):
            window.insert(StreamElement(value=i, timestamp=i))
        assert len(window) == min(capacity, n)
        if n:
            assert [e.value for e in window][-1] == n - 1


class TestJoinEquivalence:
    @given(
        events=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=1),  # port
                st.integers(min_value=0, max_value=9),  # key
                st.integers(min_value=0, max_value=50),  # time gap
            ),
            max_size=80,
        ),
        window=st.integers(min_value=1, max_value=500),
    )
    @settings(max_examples=60, deadline=None)
    def test_shj_and_snj_agree_on_equijoins(self, events, window):
        """SHJ and SNJ implement the same semantics for equality."""
        shj = SymmetricHashJoin(window)
        snj = SymmetricNestedLoopsJoin(window)
        shj_out, snj_out = [], []
        t = 0
        for port, key, gap in events:
            t += gap
            element = StreamElement(value=key, timestamp=t)
            shj_out.extend(e.value for e in shj.process(element, port))
            snj_out.extend(e.value for e in snj.process(element, port))
        assert shj_out == snj_out
        assert shj.state_size() == snj.state_size()


class TestQueueProperties:
    @given(st.lists(st.integers(), max_size=200))
    def test_fifo_order_preserved(self, values):
        queue = QueueOperator()
        elements = [StreamElement(value=v) for v in values]
        for element in elements:
            queue.push(element)
        popped = []
        while True:
            item = queue.try_pop()
            if item is None:
                break
            popped.append(item)
        assert popped == elements

    @given(
        pushes=st.lists(st.integers(min_value=0, max_value=30), max_size=30)
    )
    def test_peak_size_is_max_population(self, pushes):
        """Interleave pushes and full drains; peak == max burst size."""
        queue = QueueOperator()
        expected_peak = 0
        for burst in pushes:
            for i in range(burst):
                queue.push(StreamElement(value=i))
            expected_peak = max(expected_peak, burst)
            queue.drain()
        assert queue.peak_size == expected_peak


class TestSourceProperties:
    @given(
        count=st.integers(min_value=0, max_value=300),
        rate=st.floats(min_value=0.5, max_value=1e6, allow_nan=False),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_poisson_schedule_sorted_and_replayable(self, count, rate, seed):
        source = PoissonSource(count, rate, seed=seed)
        first = [e.timestamp for e in source]
        second = [e.timestamp for e in source]
        assert first == second
        assert first == sorted(first)
        assert len(first) == count

    @given(
        phases=st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=50),
                st.floats(min_value=1.0, max_value=1e6, allow_nan=False),
            ),
            min_size=1,
            max_size=5,
        )
    )
    def test_bursty_schedule_sorted_with_exact_count(self, phases):
        source = BurstySource(
            phases=[BurstPhase(count, rate) for count, rate in phases]
        )
        stamps = [e.timestamp for e in source]
        assert len(stamps) == sum(count for count, _ in phases)
        assert stamps == sorted(stamps)


class TestEwmaProperties:
    @given(
        st.lists(
            st.floats(min_value=-1e9, max_value=1e9, allow_nan=False),
            min_size=1,
            max_size=60,
        ),
        st.floats(min_value=0.01, max_value=1.0, allow_nan=False),
    )
    def test_estimate_stays_within_observed_range(self, samples, alpha):
        ewma = EwmaEstimator(alpha=alpha)
        for sample in samples:
            ewma.observe(sample)
        assert min(samples) - 1e-6 <= ewma.value <= max(samples) + 1e-6
