"""Tests for the pull-based ONC substrate, proxies, and pull VOs."""

import pytest

from repro.errors import PullProcessingError, VirtualOperatorError
from repro.graph.builder import QueryBuilder
from repro.operators.queue_op import QueueOperator
from repro.operators.selection import Selection
from repro.operators.union import Union
from repro.operators.joins import SymmetricHashJoin
from repro.pull.onc import (
    BinaryPullOperator,
    OncListSource,
    OncQueueReader,
    UnaryPullOperator,
    drain,
)
from repro.pull.proxy import Proxy
from repro.pull.vo import build_pull_vo
from repro.streams.elements import (
    END_OF_STREAM,
    StreamElement,
    is_end,
    is_no_element,
)
from repro.streams.sinks import CollectingSink
from repro.streams.sources import ListSource


def element(value, timestamp=0):
    return StreamElement(value=value, timestamp=timestamp)


class TestOncListSource:
    def test_delivers_then_ends(self):
        src = OncListSource([element(1), element(2)])
        src.open()
        assert src.next().value == 1
        assert src.next().value == 2
        assert is_end(src.next())

    def test_next_before_open_rejected(self):
        src = OncListSource([])
        with pytest.raises(PullProcessingError):
            src.next()

    def test_double_open_rejected(self):
        src = OncListSource([])
        src.open()
        with pytest.raises(PullProcessingError):
            src.open()

    def test_next_after_close_rejected(self):
        src = OncListSource([])
        src.open()
        src.close()
        with pytest.raises(PullProcessingError):
            src.next()


class TestOncQueueReader:
    def test_hasnext_disambiguation(self):
        """The Section 2.2 problem: empty-now versus ended."""
        queue = QueueOperator()
        reader = OncQueueReader(queue)
        reader.open()
        assert is_no_element(reader.next())  # empty *now*, not ended
        queue.push(element(1))
        assert reader.next().value == 1
        queue.push(END_OF_STREAM)
        assert is_end(reader.next())  # ended *forever*
        assert is_end(reader.next())  # stays ended

    def test_data_before_end_marker_is_drained(self):
        queue = QueueOperator()
        queue.push(element(1))
        queue.end_port(0)
        reader = OncQueueReader(queue)
        reader.open()
        assert reader.next().value == 1
        assert is_end(reader.next())


class TestUnaryPullOperator:
    def test_filters_lazily(self):
        src = OncListSource([element(v) for v in range(10)])
        op = UnaryPullOperator(Selection(lambda v: v % 2 == 0), src)
        assert [e.value for e in drain(op)] == [0, 2, 4, 6, 8]

    def test_propagates_no_element(self):
        queue = QueueOperator()
        op = UnaryPullOperator(
            Selection(lambda v: True), OncQueueReader(queue)
        )
        op.open()
        assert is_no_element(op.next())
        queue.push(element(3))
        assert op.next().value == 3

    def test_rejects_binary_kernel(self):
        with pytest.raises(PullProcessingError):
            UnaryPullOperator(Union(arity=2), OncListSource([]))

    def test_selective_kernel_consumes_until_output(self):
        src = OncListSource([element(v) for v in (1, 1, 1, 8)])
        op = UnaryPullOperator(Selection(lambda v: v > 5), src)
        op.open()
        assert op.next().value == 8  # consumed three non-matching first


class TestBinaryPullOperator:
    def test_union_merges(self):
        op = BinaryPullOperator(
            Union(arity=2),
            OncListSource([element(1), element(2)]),
            OncListSource([element(10)]),
        )
        values = sorted(e.value for e in drain(op))
        assert values == [1, 2, 10]

    def test_join_matches(self):
        left = OncListSource([element(5, 0), element(6, 1)])
        right = OncListSource([element(5, 2)])
        op = BinaryPullOperator(SymmetricHashJoin(10**9), left, right)
        assert [e.value for e in drain(op)] == [(5, 5)]

    def test_one_side_ended_keeps_pulling_other(self):
        queue = QueueOperator()
        queue.push(element(1))
        queue.push(END_OF_STREAM)
        op = BinaryPullOperator(
            Union(arity=2),
            OncQueueReader(queue),
            OncListSource([element(2)]),
        )
        values = sorted(e.value for e in drain(op))
        assert values == [1, 2]


class TestProxy:
    def test_forwards_decisively(self):
        queue = QueueOperator()
        proxy = Proxy(OncQueueReader(queue))
        proxy.open()
        assert is_no_element(proxy.next())
        queue.push(element(9))
        assert proxy.next().value == 9
        assert proxy.pulls == 2

    def test_opens_and_closes_source(self):
        src = OncListSource([])
        proxy = Proxy(src)
        proxy.open()
        assert src.opened
        proxy.close()
        assert src.closed


class TestPullVO:
    def make_chain_graph(self):
        build = QueryBuilder()
        sink = CollectingSink()
        stream = build.source(ListSource([]))
        s1 = stream.where(lambda v: v % 2 == 0, name="even")
        s2 = s1.where(lambda v: v > 4, name="big")
        s2.into(sink)
        graph = build.graph(validate=False)
        return graph, s1.node, s2.node

    def test_chain_vo_pulls_through_proxy(self):
        """The Fig. 2 transformation: two selections, one proxy, one root."""
        graph, n1, n2 = self.make_chain_graph()
        queue = QueueOperator()
        for v in range(10):
            queue.push(element(v))
        queue.push(END_OF_STREAM)
        entry_edge = graph.in_edges(n1)[0]
        root = build_pull_vo(
            graph, [n1, n2], {entry_edge: OncQueueReader(queue)}
        )
        assert [e.value for e in drain(root)] == [6, 8]

    def test_rejects_shared_subquery(self):
        """Section 3.4: sharing inside a pull VO is impossible."""
        build = QueryBuilder()
        shared = build.source(ListSource([])).where(lambda v: True, name="shared")
        a = shared.where(lambda v: True, name="a")
        b = shared.where(lambda v: True, name="b")
        a.into(CollectingSink("sa"))
        b.into(CollectingSink("sb"))
        graph = build.graph(validate=False)
        members = [shared.node, a.node, b.node]
        entry = graph.in_edges(shared.node)[0]
        with pytest.raises(VirtualOperatorError, match="sharing"):
            build_pull_vo(graph, members, {entry: OncListSource([])})

    def test_rejects_two_roots(self):
        build = QueryBuilder()
        a = build.source(ListSource([])).where(lambda v: True, name="a")
        b = build.source(ListSource([])).where(lambda v: True, name="b")
        a.into(CollectingSink("sa"))
        b.into(CollectingSink("sb"))
        graph = build.graph(validate=False)
        feeds = {
            graph.in_edges(a.node)[0]: OncListSource([]),
            graph.in_edges(b.node)[0]: OncListSource([]),
        }
        with pytest.raises(VirtualOperatorError, match="root"):
            build_pull_vo(graph, [a.node, b.node], feeds)

    def test_missing_entry_feed_rejected(self):
        graph, n1, n2 = self.make_chain_graph()
        with pytest.raises(VirtualOperatorError, match="entry feed"):
            build_pull_vo(graph, [n1, n2], {})

    def test_tree_vo_with_join(self):
        build = QueryBuilder()
        sink = CollectingSink()
        left = build.source(ListSource([])).where(lambda v: True, name="l")
        right = build.source(ListSource([])).where(lambda v: True, name="r")
        joined = left.hash_join(right, window_ns=10**9)
        joined.into(sink)
        graph = build.graph(validate=False)
        members = [left.node, right.node, joined.node]
        feeds = {
            graph.in_edges(left.node)[0]: OncListSource(
                [element(1, 0), element(2, 1)]
            ),
            graph.in_edges(right.node)[0]: OncListSource([element(2, 2)]),
        }
        root = build_pull_vo(graph, members, feeds)
        assert [e.value for e in drain(root)] == [(2, 2)]


class TestPushPullEquivalence:
    def test_same_results_both_paradigms(self):
        """Section 3: VOs work under both paradigms, same semantics."""
        values = list(range(50))

        # Push: DI through the graph.
        from repro.core.dataflow import Dispatcher

        build = QueryBuilder()
        push_sink = CollectingSink()
        stream = build.source(ListSource(values))
        stream.where(lambda v: v % 3 == 0).map(lambda v: v * 2).into(push_sink)
        graph = build.graph()
        dispatcher = Dispatcher(graph)
        src = graph.sources()[0]
        for e in src.payload:
            for edge in graph.out_edges(src):
                dispatcher.inject(edge.consumer, e, edge.port)
        for edge in graph.out_edges(src):
            dispatcher.inject_end(edge.consumer, edge.port)

        # Pull: the same kernels as ONC iterators.
        from repro.operators.projection import MapOperator

        pull_root = UnaryPullOperator(
            MapOperator(lambda v: v * 2),
            UnaryPullOperator(
                Selection(lambda v: v % 3 == 0),
                OncListSource([element(v) for v in values]),
            ),
        )
        pulled = [e.value for e in drain(pull_root)]
        assert pulled == push_sink.values
