"""Tests for the DI dispatcher (chain reactions, ends, queue runs)."""

import pytest

from repro.core.dataflow import Dispatcher
from repro.errors import SchedulingError
from repro.graph.builder import QueryBuilder
from repro.graph.query_graph import QueryGraph
from repro.operators.aggregate import WindowedAggregate
from repro.operators.union import Union
from repro.streams.elements import StreamElement
from repro.streams.sinks import CollectingSink
from repro.streams.sources import ListSource


def element(value, timestamp=0):
    return StreamElement(value=value, timestamp=timestamp)


def pipeline(n_selections=2):
    build = QueryBuilder()
    sink = CollectingSink()
    stream = build.source(ListSource([]))
    for i in range(n_selections):
        stream = stream.where(lambda v: True, name=f"s{i}")
    stream.into(sink)
    graph = build.graph(validate=False)
    first = graph.successors(graph.sources()[0])[0]
    return graph, first, sink


class TestInject:
    def test_chain_reaction_reaches_sink(self):
        graph, first, sink = pipeline()
        Dispatcher(graph).inject(first, element(1))
        assert sink.values == [1]

    def test_order_preserved_through_fan_out(self):
        build = QueryBuilder()
        sink_a, sink_b = CollectingSink("a"), CollectingSink("b")
        shared = build.source(ListSource([])).map(lambda v: v)
        shared.into(sink_a)
        shared.into(sink_b)
        graph = build.graph(validate=False)
        target = shared.node
        dispatcher = Dispatcher(graph)
        for i in range(5):
            dispatcher.inject(target, element(i))
        assert sink_a.values == [0, 1, 2, 3, 4]
        assert sink_b.values == [0, 1, 2, 3, 4]

    def test_multi_output_order_preserved(self):
        build = QueryBuilder()
        sink = CollectingSink()
        stream = build.source(ListSource([])).flat_map(lambda v: [v, v + 1, v + 2])
        stream.into(sink)
        graph = build.graph(validate=False)
        Dispatcher(graph).inject(stream.node, element(10))
        assert sink.values == [10, 11, 12]

    def test_stops_at_queue(self):
        graph, first, sink = pipeline()
        edge = graph.out_edges(first)[0]
        queue = graph.insert_queue(edge)
        Dispatcher(graph).inject(first, element(1))
        assert sink.values == []
        assert len(queue.payload) == 1

    def test_deep_graph_does_not_recurse(self):
        import sys

        depth = sys.getrecursionlimit() + 200
        graph, first, sink = pipeline(n_selections=depth)
        Dispatcher(graph).inject(first, element(7))
        assert sink.values == [7]

    def test_invocation_count(self):
        graph, first, sink = pipeline(n_selections=3)
        dispatcher = Dispatcher(graph)
        dispatcher.inject(first, element(1))
        assert dispatcher.invocations == 3
        assert dispatcher.sink_deliveries == 1


class TestInjectEnd:
    def test_end_reaches_sink(self):
        graph, first, sink = pipeline()
        Dispatcher(graph).inject_end(first)
        assert sink.ended

    def test_end_waits_for_all_ports(self):
        g = QueryGraph()
        union = g.add_operator(Union(arity=2))
        sink_node = g.add_sink(CollectingSink())
        sink = sink_node.payload
        g.connect(union, sink_node)
        dispatcher = Dispatcher(g)
        dispatcher.inject_end(union, port=0)
        assert not sink.ended
        dispatcher.inject_end(union, port=1)
        assert sink.ended

    def test_end_through_queue_is_buffered(self):
        graph, first, sink = pipeline()
        edge = graph.out_edges(first)[0]
        queue = graph.insert_queue(edge)
        dispatcher = Dispatcher(graph)
        dispatcher.inject(first, element(1))
        dispatcher.inject_end(first)
        assert not sink.ended  # END is buffered behind the data
        dispatcher.run_queue(queue)
        assert sink.values == [1]
        assert sink.ended

    def test_flush_output_delivered_before_end(self):
        g = QueryGraph()
        agg = g.add_operator(_FlushingAggregate())
        sink_node = g.add_sink(CollectingSink())
        g.connect(agg, sink_node)
        dispatcher = Dispatcher(g)
        dispatcher.inject(agg, element(1))
        dispatcher.inject_end(agg)
        sink = sink_node.payload
        assert sink.values[-1] == "flushed"
        assert sink.ended


class _FlushingAggregate(WindowedAggregate):
    """Aggregate that emits a marker when flushed at end-of-stream."""

    def __init__(self):
        super().__init__(window_ns=10**9, aggregate="count")

    def flush(self):
        return [element("flushed")]


class TestRunQueue:
    def test_processes_buffered_elements(self):
        graph, first, sink = pipeline()
        queue = graph.insert_queue(graph.out_edges(first)[0])
        dispatcher = Dispatcher(graph)
        for i in range(5):
            dispatcher.inject(first, element(i))
        processed = dispatcher.run_queue(queue)
        assert processed == 5
        assert sink.values == [0, 1, 2, 3, 4]

    def test_respects_batch_limit(self):
        graph, first, sink = pipeline()
        queue = graph.insert_queue(graph.out_edges(first)[0])
        dispatcher = Dispatcher(graph)
        for i in range(5):
            dispatcher.inject(first, element(i))
        assert dispatcher.run_queue(queue, max_items=2) == 2
        assert len(queue.payload) == 3

    def test_rejects_non_queue_node(self):
        graph, first, sink = pipeline()
        with pytest.raises(SchedulingError):
            Dispatcher(graph).run_queue(first)


class TestStats:
    def test_measures_cost_and_interarrival(self):
        from repro.stats.estimators import StatisticsRegistry

        graph, first, sink = pipeline(n_selections=1)
        stats = StatisticsRegistry()
        dispatcher = Dispatcher(graph, stats=stats)
        for t in range(0, 10_000, 1_000):
            dispatcher.inject(first, element(1, timestamp=t))
        node_stats = stats.for_node(first)
        assert node_stats.elements == 10
        assert node_stats.cost_ns > 0
        assert node_stats.interarrival_ns == pytest.approx(1_000)
