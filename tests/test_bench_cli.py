"""Tests for the repro-bench CLI and the reporting helpers."""

import pytest

from repro.bench.__main__ import EXPERIMENTS, main
from repro.bench.harness import ascii_chart, format_series_table, format_table


class TestHarnessHelpers:
    def test_format_table_aligns_columns(self):
        text = format_table(["a", "bb"], [[1, 2], [333, 4]])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert "333" in lines[3]
        # All lines equally wide (padded).
        assert len({len(line.rstrip()) for line in lines}) >= 1

    def test_ascii_chart_scales_to_max(self):
        chart = ascii_chart("x", [0.0, 5.0, 10.0])
        assert chart.startswith("x |")
        assert chart.endswith("max=10")
        assert "@" in chart  # the peak renders as the densest glyph

    def test_ascii_chart_empty(self):
        assert "(no data)" in ascii_chart("x", [])

    def test_ascii_chart_downsamples(self):
        chart = ascii_chart("x", list(range(1_000)), width=20)
        bar = chart.split("|")[1]
        assert len(bar) == 20

    def test_format_series_table(self):
        text = format_series_table(
            ["t", "a", "b"], [0.0, 1.0], [[1.0, 2.0], [3.0, 4.0]]
        )
        assert "3.0" in text and "4.0" in text


class TestCli:
    def test_single_quick_experiment(self, capsys):
        assert main(["fig11", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "Figure 11" in out
        assert "stall-avoiding" in out

    def test_fig9_and_fig10_deduplicated(self, capsys):
        assert main(["fig9", "fig10", "--scale", "0.02"]) == 0
        out = capsys.readouterr().out
        # One shared run reports both figures once.
        assert out.count("Figure 9 - queue memory") == 1
        assert out.count("Figure 10 - cumulative results") == 1

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_experiment_registry_complete(self):
        assert set(EXPERIMENTS) == {
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "fig10",
            "fig11",
            "ablations",
        }
