"""Tests for cost-annotated operator wrappers."""

import pytest

from repro.operators.costed import CostedOperator, constant_cost, probe_work_cost
from repro.operators.joins import SymmetricNestedLoopsJoin
from repro.operators.selection import Selection
from repro.streams.elements import StreamElement


def element(value, timestamp=0):
    return StreamElement(value=value, timestamp=timestamp)


class TestConstantCost:
    def test_charges_per_element(self):
        op = CostedOperator(Selection(lambda v: True), cost_model=2700.0)
        op.process(element(1))
        op.process(element(2))
        assert op.charged_ns == pytest.approx(5400.0)
        assert op.last_cost_ns == pytest.approx(2700.0)

    def test_transparent_semantics(self):
        op = CostedOperator(Selection(lambda v: v > 5), cost_model=10.0)
        assert op.process(element(9)) == [element(9)]
        assert op.process(element(1)) == []

    def test_end_port_forwarded(self):
        inner = Selection(lambda v: True)
        op = CostedOperator(inner, cost_model=1.0)
        op.end_port(0)
        assert inner.closed
        assert op.closed

    def test_reset_clears_charges(self):
        op = CostedOperator(Selection(lambda v: True), cost_model=5.0)
        op.process(element(1))
        op.reset()
        assert op.charged_ns == 0.0

    def test_arity_mirrors_inner(self):
        join = SymmetricNestedLoopsJoin(100)
        assert CostedOperator(join, cost_model=1.0).arity == 2


class TestProbeWorkCost:
    def test_join_cost_grows_with_window(self):
        join = SymmetricNestedLoopsJoin(10**12)
        op = CostedOperator(join, probe_work_cost(base_ns=100.0, per_probe_ns=10.0))
        op.process(element(1, 0), port=0)
        first = op.last_cost_ns  # empty opposite window
        for i in range(50):
            op.process(element(i, i + 1), port=1)
        op.process(element(2, 100), port=0)
        assert first == pytest.approx(100.0)
        assert op.last_cost_ns == pytest.approx(100.0 + 10.0 * 50)

    def test_state_size_forwarded(self):
        join = SymmetricNestedLoopsJoin(10**12)
        op = CostedOperator(join, probe_work_cost(1.0, 1.0))
        op.process(element(1, 0), port=0)
        assert op.state_size() == 1


class TestBusySpin:
    def test_busy_spin_consumes_wall_time(self):
        import time

        op = CostedOperator(
            Selection(lambda v: True),
            cost_model=constant_cost(2_000_000.0),  # 2 ms
            busy_spin=True,
        )
        start = time.perf_counter_ns()
        op.process(element(1))
        elapsed = time.perf_counter_ns() - start
        assert elapsed >= 1_500_000  # at least ~1.5 ms really burned
